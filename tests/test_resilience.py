"""Tests for fault injection and the redundant broadcast (Section 1.2 flavor)."""

import numpy as np
import pytest

from repro.congest import FaultySimulator, Network, NodeProgram
from repro.core import (
    build_packing_with_retry,
    redundant_broadcast,
    tree_edge_ids,
    uniform_random_placement,
)
from repro.graphs import cycle_graph, thick_cycle
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def setup():
    g = thick_cycle(10, 10)  # n = 100, λ = 20
    packing, _ = build_packing_with_retry(g, 3, seed=2, distributed=False)
    pl = uniform_random_placement(g.n, 90, seed=3)
    return g, packing, pl


class _Flood(NodeProgram):
    """Node 0 floods a token; every node records whether it heard it."""

    def __init__(self, node):
        super().__init__()
        self.node = node
        self.heard = node == 0

    def on_start(self, ctx):
        if self.node == 0:
            ctx.send_all((1,))

    def on_round(self, ctx):
        if ctx.inbox and not self.heard:
            self.heard = True
            ctx.send_all((1,))


class TestFaultySimulator:
    def test_dead_edge_partitions_flood(self):
        g = cycle_graph(6)
        # Kill both edges around node 3: the flood cannot reach it.
        dead = {g.edge_id(2, 3), g.edge_id(3, 4)}
        sim = FaultySimulator(Network(g), _Flood, dead_edges=dead)
        result = sim.run()
        heard = [p.heard for p in result.programs]
        assert heard[3] is False
        assert all(heard[v] for v in (0, 1, 2, 4, 5))

    def test_no_faults_is_base_behavior(self):
        g = cycle_graph(6)
        sim = FaultySimulator(Network(g), _Flood)
        result = sim.run()
        assert all(p.heard for p in result.programs)
        assert sim.dropped == 0

    def test_drop_rate_counts_drops(self):
        g = cycle_graph(8)
        sim = FaultySimulator(Network(g), _Flood, drop_rate=0.5, fault_seed=1)
        sim.run()
        assert sim.dropped > 0

    def test_mobile_adversary_round_scoped(self):
        g = cycle_graph(6)
        eid = g.edge_id(0, 1)
        # Block edge (0,1) only in round 1; the flood detours or retries...
        # in a cycle the token still reaches everyone the other way around.
        sim = FaultySimulator(Network(g), _Flood, mobile={1: {eid}})
        result = sim.run()
        assert all(p.heard for p in result.programs)
        assert sim.dropped >= 1

    def test_invalid_drop_rate(self):
        g = cycle_graph(5)
        with pytest.raises(ValueError):
            FaultySimulator(Network(g), _Flood, drop_rate=1.0)


class TestRedundantBroadcast:
    def test_clean_run_full_coverage(self, setup):
        g, packing, pl = setup
        rep = redundant_broadcast(g, pl, packing, redundancy=1)
        assert rep.min_coverage == 1.0
        assert rep.fully_delivered == rep.k

    def test_sabotaged_tree_loses_exactly_its_messages(self, setup):
        g, packing, pl = setup
        dead = tree_edge_ids(packing, 0)
        rep = redundant_broadcast(g, pl, packing, redundancy=1, dead_edges=dead)
        # Messages homed on tree 0 (k/parts of them) are lost; others arrive.
        assert rep.fully_delivered == rep.k - rep.k // packing.size
        assert rep.min_coverage < 1.0

    def test_redundancy_two_survives_dead_tree(self, setup):
        g, packing, pl = setup
        dead = tree_edge_ids(packing, 0)
        rep = redundant_broadcast(g, pl, packing, redundancy=2, dead_edges=dead)
        assert rep.fully_delivered == rep.k
        assert rep.min_coverage == 1.0

    def test_redundancy_costs_rounds(self, setup):
        g, packing, pl = setup
        r1 = redundant_broadcast(g, pl, packing, redundancy=1)
        r2 = redundant_broadcast(g, pl, packing, redundancy=2)
        assert r2.rounds > r1.rounds  # ~2x pipeline load
        assert r2.rounds <= 3 * r1.rounds + 20

    def test_full_redundancy_survives_all_but_one_tree(self, setup):
        g, packing, pl = setup
        dead = tree_edge_ids(packing, 0) | tree_edge_ids(packing, 1)
        rep = redundant_broadcast(
            g, pl, packing, redundancy=packing.size, dead_edges=dead
        )
        assert rep.fully_delivered == rep.k

    def test_redundancy_bounds(self, setup):
        g, packing, pl = setup
        with pytest.raises(ValidationError):
            redundant_broadcast(g, pl, packing, redundancy=0)
        with pytest.raises(ValidationError):
            redundant_broadcast(g, pl, packing, redundancy=packing.size + 1)

    def test_lossy_network_degrades_gracefully(self, setup):
        g, packing, pl = setup
        lossy = redundant_broadcast(
            g, pl, packing, redundancy=2, drop_rate=0.01, seed=5
        )
        # 1% loss with double redundancy: most messages still everywhere.
        assert lossy.fully_delivered >= 0.8 * lossy.k
