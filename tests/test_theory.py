"""Tests for the closed-form round predictors."""

import pytest

from repro import theory
from repro.util.errors import ValidationError


class TestPredictors:
    def test_textbook_linear_in_k(self):
        assert theory.predict_textbook_rounds(10, 200) == 6 * 10 + 2 * 200

    def test_fast_decreases_with_lambda(self):
        slow = theory.predict_fast_rounds(1000, 4000, delta=10, lam=10)
        fast = theory.predict_fast_rounds(1000, 4000, delta=40, lam=40)
        assert fast < slow

    def test_fast_rejects_delta_below_lambda(self):
        with pytest.raises(ValidationError):
            theory.predict_fast_rounds(100, 100, delta=5, lam=10)

    def test_combined_is_min(self):
        n, k, delta, lam, D = 500, 5000, 20, 20, 12
        combo = theory.predict_combined_rounds(n, k, delta, lam, D)
        assert combo == min(
            theory.predict_textbook_rounds(D, k),
            theory.predict_fast_rounds(n, k, delta, lam),
        )

    def test_crossover_exists(self):
        """Small k favors textbook; huge k favors fast (the E3 crossover)."""
        n, delta, lam, D = 500, 25, 25, 10
        small = theory.predict_textbook_rounds(D, 10) < theory.predict_fast_rounds(
            n, 10, delta, lam
        )
        large = theory.predict_textbook_rounds(D, 50_000) > theory.predict_fast_rounds(
            n, 50_000, delta, lam
        )
        assert small and large


class TestLowerBoundFormulas:
    def test_theorem3(self):
        assert theory.theorem3_lower_bound(4000, 10) == pytest.approx(99.0)
        assert theory.theorem3_lower_bound(1, 100) == 0.0

    def test_theorem8(self):
        assert theory.theorem8_lower_bound(4000, 10) == pytest.approx(99.0)

    def test_theorem9_scales(self):
        loose = theory.theorem9_lower_bound(1000, 10, alpha=16.0)
        tight = theory.theorem9_lower_bound(1000, 10, alpha=2.0)
        assert tight > loose  # better approximation -> higher cost

    def test_theorem11_min_structure(self):
        import math

        by_bits = theory.theorem11_lower_bound(100, 10**6, 10)
        by_cut = theory.theorem11_lower_bound(10**12, 1000, 10)
        assert by_bits == pytest.approx(100 / math.log2(10**6) ** 2)
        assert by_cut == 100.0

    def test_universal_ratio(self):
        assert theory.universal_optimality_ratio(100, 1000, 10) == 1.0
        with pytest.raises(ValidationError):
            theory.universal_optimality_ratio(10, 0, 5)
