"""Tests for graph properties: diameter, Observation 1, conductance, cuts."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    approx_diameter,
    check_observation1,
    complete_graph,
    conductance_upper_bound,
    cut_value,
    cycle_graph,
    diameter,
    min_cut,
    observation1_bound,
    path_graph,
    random_regular,
    thick_cycle,
    volume,
)
from repro.util.errors import ValidationError


class TestDiameter:
    def test_exact_values(self):
        assert diameter(path_graph(9)) == 8
        assert diameter(cycle_graph(9)) == 4
        assert diameter(complete_graph(5)) == 1
        assert diameter(Graph(1, [])) == 0

    def test_disconnected_raises(self):
        with pytest.raises(ValidationError):
            diameter(Graph(3, [(0, 1)]))

    def test_approx_is_lower_bound_and_exact_on_these(self):
        for g in (path_graph(20), cycle_graph(15), random_regular(40, 4, seed=3)):
            approx = approx_diameter(g, samples=6, seed=1)
            exact = diameter(g)
            assert approx <= exact
            # Double sweep is exact on paths and near-exact on these sizes.
            assert approx >= exact - 1

    def test_approx_disconnected_raises(self):
        with pytest.raises(ValidationError):
            approx_diameter(Graph(3, [(0, 1)]))


class TestObservation1:
    def test_bound_formula(self):
        assert observation1_bound(100, 10) == 30.0

    def test_holds_on_families(self):
        for g in (
            path_graph(30),
            cycle_graph(30),
            random_regular(40, 6, seed=2),
            thick_cycle(8, 3),
        ):
            d, bound = check_observation1(g)
            assert d <= bound

    def test_tightness_on_path(self):
        # The path graph has D = n-1 and δ = 1: D/(n/δ) = (n-1)/n → the
        # bound is tight up to the constant 3.
        g = path_graph(50)
        d, bound = check_observation1(g)
        assert d / bound > 0.3

    def test_zero_degree_raises(self):
        with pytest.raises(ValidationError):
            observation1_bound(10, 0)


class TestCutsAndConductance:
    def test_cut_value_unweighted(self):
        g = cycle_graph(8)
        side = np.zeros(8, dtype=bool)
        side[:4] = True
        assert cut_value(g, side) == 2

    def test_cut_value_weighted(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], weights=[5, 7, 9])
        side = np.array([True, True, False, False])
        assert cut_value(g, side) == 7

    def test_cut_value_bad_mask(self):
        with pytest.raises(ValidationError):
            cut_value(cycle_graph(5), np.ones(4, dtype=bool))

    def test_volume(self):
        g = complete_graph(4)
        side = np.array([True, True, False, False])
        assert volume(g, side) == 6

    def test_conductance_min_cut_bound(self):
        # The paper's observation: a minimum cut witnesses φ = O(λ/δ).
        g = thick_cycle(10, 3)
        side, cut = min_cut(g)
        phi = conductance_upper_bound(g, side)
        lam, delta = len(cut), g.min_degree()
        assert phi <= 2.0 * lam / delta  # constant-2 slack

    def test_conductance_empty_side_raises(self):
        with pytest.raises(ValidationError):
            conductance_upper_bound(cycle_graph(5), np.zeros(5, dtype=bool))
