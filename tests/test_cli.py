"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_graph_spec
from repro.graphs import edge_connectivity


class TestGraphSpecParser:
    def test_reg(self):
        g = parse_graph_spec("reg:n=40,d=4,seed=1")
        assert g.n == 40 and (g.degrees() == 4).all()

    def test_thick(self):
        g = parse_graph_spec("thick:groups=6,size=3")
        assert g.n == 18 and edge_connectivity(g) == 6

    def test_hypercube(self):
        assert parse_graph_spec("hypercube:dim=4").n == 16

    def test_torus(self):
        assert parse_graph_spec("torus:rows=3,cols=4").n == 12

    def test_cliques(self):
        g = parse_graph_spec("cliques:num=3,size=5,bridge=2")
        assert edge_connectivity(g) == 2

    def test_gk13(self):
        assert parse_graph_spec("gk13:length=8,lam=3").n == 24

    def test_barbell(self):
        g = parse_graph_spec("barbell:clique=5,bridge=2")
        assert edge_connectivity(g) == 1

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            parse_graph_spec("pentagram:n=5")

    def test_missing_param(self):
        with pytest.raises(ValueError):
            parse_graph_spec("reg:n=40")

    def test_malformed_fragment(self):
        with pytest.raises(ValueError):
            parse_graph_spec("reg:n40")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "hypercube:dim=4"]) == 0
        out = capsys.readouterr().out
        assert "n=16" in out and "lambda=4" in out

    def test_broadcast_fast(self, capsys):
        rc = main(
            ["broadcast", "thick:groups=8,size=6", "-k", "48", "--C", "1.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total rounds:" in out and "pipeline" in out

    def test_broadcast_textbook(self, capsys):
        rc = main(
            ["broadcast", "hypercube:dim=5", "-k", "20", "--algorithm", "textbook"]
        )
        assert rc == 0
        assert "textbook" in capsys.readouterr().out

    def test_broadcast_unknown_lambda(self, capsys):
        rc = main(
            ["broadcast", "thick:groups=8,size=6", "-k", "24",
             "--algorithm", "unknown-lambda", "--C", "1.5"]
        )
        assert rc == 0
        assert "lambda_search" in capsys.readouterr().out

    def test_packing(self, capsys):
        rc = main(["packing", "thick:groups=8,size=8", "--C", "1.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "edge_disjoint=True" in out

    def test_apsp_unweighted(self, capsys):
        rc = main(["apsp", "thick:groups=8,size=8", "--C", "1.5"])
        assert rc == 0
        assert "envelope_ok=True" in capsys.readouterr().out

    def test_apsp_weighted(self, capsys):
        rc = main(
            ["apsp", "thick:groups=8,size=8", "--weighted", "--spanner-k", "2",
             "--C", "1.5"]
        )
        assert rc == 0
        assert "ok=True" in capsys.readouterr().out

    def test_cuts(self, capsys):
        rc = main(["cuts", "thick:groups=8,size=10", "--eps", "0.5", "--C", "1.5"])
        assert rc == 0
        assert "cut error" in capsys.readouterr().out

    def test_error_path_returns_one(self, capsys):
        assert main(["info", "pentagram:n=5"]) == 1
        assert "error:" in capsys.readouterr().err


class TestResilienceCommand:
    def test_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["resilience", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--adversary" in out and "targeted-cut" in out and "--backend" in out

    def test_clean_run_full_coverage(self, capsys):
        rc = main(["resilience", "thick:groups=8,size=6", "-k", "24", "--C", "1.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fully delivered: 24/24" in out and "min coverage: 100.00%" in out

    def test_dead_tree_backends_print_identically(self, capsys):
        args = ["resilience", "thick:groups=8,size=6", "-k", "24", "-r", "2",
                "--adversary", "dead-tree", "--C", "1.5"]
        assert main(args) == 0
        sim_out = capsys.readouterr().out
        assert main(args + ["--backend", "vectorized"]) == 0
        vec_out = capsys.readouterr().out
        strip = lambda s: [l for l in s.splitlines() if not l.startswith("backend")]  # noqa: E731
        assert strip(sim_out) == strip(vec_out)
        assert "fully delivered: 24/24" in sim_out  # r=2 rides out the dead tree

    def test_loss_adversary(self, capsys):
        rc = main(["resilience", "thick:groups=8,size=6", "-k", "24",
                   "--adversary", "loss", "--drop-rate", "0.05", "--C", "1.5",
                   "--fault-seed", "3", "--backend", "vectorized"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "adversary: loss" in out and "deliveries dropped:" in out

    def test_invalid_drop_rate_is_an_error(self, capsys):
        rc = main(["resilience", "thick:groups=8,size=6", "-k", "8",
                   "--adversary", "loss", "--drop-rate", "1.5", "--C", "1.5"])
        assert rc == 1
        assert "drop_rate" in capsys.readouterr().err

    def test_list_scenarios(self, capsys):
        assert main(["resilience", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("none", "dead-tree", "mobile", "loss", "targeted-cut"):
            assert name in out

    def test_unknown_scenario_is_usage_error(self, capsys):
        rc = main(["resilience", "thick:groups=4,size=4", "-k", "4",
                   "--adversary", "warp"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'warp'" in err and "--list-scenarios" in err

    def test_missing_graph_is_usage_error(self, capsys):
        assert main(["resilience"]) == 2
        assert "graph spec is required" in capsys.readouterr().err

    def test_roots_option_spreads_the_packing(self, capsys):
        rc = main(["resilience", "thick:groups=8,size=6", "-k", "24",
                   "--roots", "spread", "--C", "1.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "roots:" in out and "min coverage: 100.00%" in out


class TestTournamentCommand:
    def test_list_scenarios(self, capsys):
        assert main(["tournament", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "targeted-cut" in out and "default defenses" in out

    def test_missing_graph_is_usage_error(self, capsys):
        assert main(["tournament"]) == 2
        assert "graph spec is required" in capsys.readouterr().err

    def test_unknown_adversary_is_usage_error(self, capsys):
        rc = main(["tournament", "thick:groups=4,size=4",
                   "--adversaries", "zero-day"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "zero-day" in err and "--list-scenarios" in err

    def test_small_grid_table(self, capsys):
        rc = main(["tournament", "thick:groups=6,size=5", "-k", "20",
                   "--parts", "2", "--adversaries", "dead-tree,loss",
                   "--defenses", "shared-r1,spread-r2",
                   "--backend", "vectorized"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "budget=10" in out
        assert "best vs dead-tree: spread-r2" in out
        assert "rebuild" in out  # shared-r1 buys back the dead tree

    def test_json_output_round_trips(self, capsys):
        import json

        rc = main(["tournament", "thick:groups=6,size=5", "-k", "12",
                   "--parts", "2", "--adversaries", "loss",
                   "--defenses", "shared-r1", "--backend", "vectorized",
                   "--json"])
        assert rc == 0
        pay = json.loads(capsys.readouterr().out)
        assert pay["n"] == 30 and pay["adversaries"] == ["loss"]
        assert pay["attacks"]["loss"]["type"] == "loss"
        assert len(pay["cells"]) == 1
