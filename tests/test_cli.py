"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_graph_spec
from repro.graphs import edge_connectivity


class TestGraphSpecParser:
    def test_reg(self):
        g = parse_graph_spec("reg:n=40,d=4,seed=1")
        assert g.n == 40 and (g.degrees() == 4).all()

    def test_thick(self):
        g = parse_graph_spec("thick:groups=6,size=3")
        assert g.n == 18 and edge_connectivity(g) == 6

    def test_hypercube(self):
        assert parse_graph_spec("hypercube:dim=4").n == 16

    def test_torus(self):
        assert parse_graph_spec("torus:rows=3,cols=4").n == 12

    def test_cliques(self):
        g = parse_graph_spec("cliques:num=3,size=5,bridge=2")
        assert edge_connectivity(g) == 2

    def test_gk13(self):
        assert parse_graph_spec("gk13:length=8,lam=3").n == 24

    def test_barbell(self):
        g = parse_graph_spec("barbell:clique=5,bridge=2")
        assert edge_connectivity(g) == 1

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            parse_graph_spec("pentagram:n=5")

    def test_missing_param(self):
        with pytest.raises(ValueError):
            parse_graph_spec("reg:n=40")

    def test_malformed_fragment(self):
        with pytest.raises(ValueError):
            parse_graph_spec("reg:n40")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "hypercube:dim=4"]) == 0
        out = capsys.readouterr().out
        assert "n=16" in out and "lambda=4" in out

    def test_broadcast_fast(self, capsys):
        rc = main(
            ["broadcast", "thick:groups=8,size=6", "-k", "48", "--C", "1.5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "total rounds:" in out and "pipeline" in out

    def test_broadcast_textbook(self, capsys):
        rc = main(
            ["broadcast", "hypercube:dim=5", "-k", "20", "--algorithm", "textbook"]
        )
        assert rc == 0
        assert "textbook" in capsys.readouterr().out

    def test_broadcast_unknown_lambda(self, capsys):
        rc = main(
            ["broadcast", "thick:groups=8,size=6", "-k", "24",
             "--algorithm", "unknown-lambda", "--C", "1.5"]
        )
        assert rc == 0
        assert "lambda_search" in capsys.readouterr().out

    def test_packing(self, capsys):
        rc = main(["packing", "thick:groups=8,size=8", "--C", "1.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "edge_disjoint=True" in out

    def test_apsp_unweighted(self, capsys):
        rc = main(["apsp", "thick:groups=8,size=8", "--C", "1.5"])
        assert rc == 0
        assert "envelope_ok=True" in capsys.readouterr().out

    def test_apsp_weighted(self, capsys):
        rc = main(
            ["apsp", "thick:groups=8,size=8", "--weighted", "--spanner-k", "2",
             "--C", "1.5"]
        )
        assert rc == 0
        assert "ok=True" in capsys.readouterr().out

    def test_cuts(self, capsys):
        rc = main(["cuts", "thick:groups=8,size=10", "--eps", "0.5", "--C", "1.5"])
        assert rc == 0
        assert "cut error" in capsys.readouterr().out

    def test_error_path_returns_one(self, capsys):
        assert main(["info", "pentagram:n=5"]) == 1
        assert "error:" in capsys.readouterr().err
